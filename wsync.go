// Package wsync is a Go implementation of the wireless synchronization
// protocols of Dolev, Gilbert, Guerraoui, Kuhn and Newport, "The Wireless
// Synchronization Problem" (PODC 2009).
//
// The problem: n devices activated at arbitrary times on a single-hop radio
// network with F narrowband frequencies must agree on a global round
// numbering, while an interference adversary disrupts up to t < F
// frequencies per round. The library provides:
//
//   - the Trapdoor Protocol, which synchronizes every node within
//     O(F/(F−t)·log²N + Ft/(F−t)·logN) rounds with high probability;
//   - the Good Samaritan Protocol, an adaptive variant that finishes in
//     O(t'·log³N) rounds when all nodes start together and only t' < t
//     frequencies are actually disrupted, and O(F·log³N) rounds always;
//   - a deterministic, reproducible simulator of the disrupted radio
//     network model, with pluggable adversaries and activation schedules;
//   - baselines, lower-bound experiments, and a harness regenerating every
//     figure and theorem of the paper (see EXPERIMENTS.md).
//
// # Quick start
//
//	res, err := wsync.Run(wsync.Config{
//		Protocol: wsync.Trapdoor,
//		Nodes:    8,
//		N:        64,
//		F:        8,
//		T:        2,
//		Adversary: "fixed", // jam frequencies 1..t forever
//	})
//
// Run returns per-node synchronization rounds and the verdict of a checker
// that verifies the problem's five properties (validity, synch commit,
// correctness, agreement, liveness) over the whole execution.
//
// Applications that need behavior beyond synchronization (data exchange on
// synchronized hopping schedules, TDMA slotting, ...) supply their own
// agents via Config.NewAgent, typically wrapping a protocol node; see
// examples/ for three complete applications.
package wsync

import (
	"fmt"

	"wsync/internal/adversary"
	"wsync/internal/baseline"
	"wsync/internal/msg"
	"wsync/internal/props"
	"wsync/internal/rng"
	"wsync/internal/samaritan"
	"wsync/internal/sim"
	"wsync/internal/trapdoor"
)

// Aliases re-export the engine-level types so applications outside this
// module can build custom agents and adversaries against the public API.
type (
	// Agent is one node's per-round protocol behavior.
	Agent = sim.Agent
	// Action is a node's choice for one round.
	Action = sim.Action
	// Output is a node's per-round output in N⊥.
	Output = sim.Output
	// Message is a radio transmission payload.
	Message = msg.Message
	// Timestamp is the (age, uid) pair protocol messages carry.
	Timestamp = msg.Timestamp
	// Rand is the deterministic per-node random stream.
	Rand = rng.Rand
	// Adversary chooses disrupted frequencies each round.
	Adversary = sim.Adversary
	// Schedule determines activation times.
	Schedule = sim.Schedule
	// Observer is notified after every simulated round.
	Observer = sim.Observer
	// SimConfig is the engine-level configuration for advanced users.
	SimConfig = sim.Config
	// SimResult is the engine-level result.
	SimResult = sim.Result
	// LeaderReporter is implemented by protocol agents that can report
	// whether they won the leader competition.
	LeaderReporter = sim.LeaderReporter
	// TrapdoorParams configures the Trapdoor Protocol.
	TrapdoorParams = trapdoor.Params
	// SamaritanParams configures the Good Samaritan Protocol.
	SamaritanParams = samaritan.Params
)

// Message kinds, re-exported for applications that exchange data after
// synchronizing.
const (
	KindContender = msg.KindContender
	KindSamaritan = msg.KindSamaritan
	KindLeader    = msg.KindLeader
	KindData      = msg.KindData
)

// Protocol selects a synchronization protocol by name.
type Protocol string

// Available protocols.
const (
	// Trapdoor is the paper's near-optimal protocol (Section 6).
	Trapdoor Protocol = "trapdoor"
	// GoodSamaritan is the paper's adaptive protocol (Section 7).
	GoodSamaritan Protocol = "samaritan"
	// BaselineWakeup is the no-competition comparison protocol.
	BaselineWakeup Protocol = "wakeup"
	// BaselineRoundRobin is the deterministic comparison protocol.
	BaselineRoundRobin Protocol = "roundrobin"
	// BaselineSingleFreq is the single-frequency comparison protocol.
	BaselineSingleFreq Protocol = "singlefreq"
)

// Config describes one synchronization run. Zero values get sensible
// defaults (see each field).
type Config struct {
	// Protocol selects the algorithm; default Trapdoor. Ignored when
	// NewAgent is set.
	Protocol Protocol
	// Nodes is the number of devices activated (default 2).
	Nodes int
	// N is the known upper bound on participants (default max(Nodes, 16)).
	// The protocols' error probability is ~1/N, so very small explicit N
	// values trade correctness for speed.
	N int
	// F is the number of frequencies (default 8); T the adversary budget
	// (default 0).
	F int
	T int

	// Adversary names the jammer: "none" (default), "fixed" (jams 1..t),
	// "random", "sweep", "bursty", "reactive". Ignored when
	// CustomAdversary is set.
	Adversary string
	// JammedPrefix overrides the "fixed" adversary's prefix size (the
	// paper's t' < t good-case disruption); -0 or unset means T.
	JammedPrefix int

	// Activation is "simultaneous" (default), "staggered", or "random".
	// Ignored when CustomSchedule is set.
	Activation string
	// ActivationGap is the staggered gap (default 1); ActivationWindow the
	// random window (default 1000).
	ActivationGap    uint64
	ActivationWindow uint64

	// Seed makes runs reproducible (default 1).
	Seed uint64
	// MaxRounds bounds the run (default 1<<22).
	MaxRounds uint64
	// Concurrent runs node agents on goroutines (same results, parallel
	// execution).
	Concurrent bool
	// RunFullBudget keeps the simulation running until MaxRounds even
	// after every node has synchronized — required by applications that
	// exchange data on the synchronized rounds.
	RunFullBudget bool
	// FaultTolerant enables the crash-tolerant Trapdoor variant.
	FaultTolerant bool

	// NewAgent overrides Protocol with a custom per-node agent factory —
	// the extension point for applications built on synchronized rounds.
	NewAgent func(id int, activation uint64, r *Rand) Agent
	// CustomAdversary and CustomSchedule override Adversary/Activation.
	CustomAdversary Adversary
	CustomSchedule  Schedule
	// Observers receive every round record (advanced use).
	Observers []Observer
}

// Result reports a synchronization run.
type Result struct {
	// AllSynced reports whether every node committed a round number.
	AllSynced bool
	// Rounds is the number of simulated rounds.
	Rounds uint64
	// MaxSyncLocal is the worst per-node synchronization time in local
	// rounds — the paper's complexity measure.
	MaxSyncLocal uint64
	// SyncRound[i] is the global round node i first output a number (0 =
	// never); Activated[i] its activation round.
	SyncRound []uint64
	Activated []uint64
	// Leaders is the number of nodes that consider themselves leader at
	// the end (1 in correct executions).
	Leaders int
	// PropertiesOK reports that no property violation was observed;
	// Violations lists any (capped).
	PropertiesOK bool
	Violations   []string
	// Transmissions, Deliveries, Collisions, JammedLosses summarize the
	// medium.
	Transmissions uint64
	Deliveries    uint64
	Collisions    uint64
	JammedLosses  uint64
	// HitMaxRounds reports the run stopped at the budget.
	HitMaxRounds bool
}

// withDefaults normalizes the configuration.
func (c Config) withDefaults() Config {
	if c.Protocol == "" {
		c.Protocol = Trapdoor
	}
	if c.Nodes == 0 {
		c.Nodes = 2
	}
	if c.N == 0 {
		c.N = c.Nodes
		if c.N < 16 {
			c.N = 16
		}
	}
	if c.N < 2 {
		c.N = 2
	}
	if c.F == 0 {
		c.F = 8
	}
	if c.Adversary == "" {
		c.Adversary = "none"
	}
	if c.Activation == "" {
		c.Activation = "simultaneous"
	}
	if c.ActivationGap == 0 {
		c.ActivationGap = 1
	}
	if c.ActivationWindow == 0 {
		c.ActivationWindow = 1000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.JammedPrefix == 0 {
		c.JammedPrefix = c.T
	}
	return c
}

// Run executes one synchronization run and reports the outcome.
func Run(c Config) (*Result, error) {
	c = c.withDefaults()

	factory, err := c.agentFactory()
	if err != nil {
		return nil, err
	}
	sched, err := c.schedule()
	if err != nil {
		return nil, err
	}
	adv, err := c.adversary()
	if err != nil {
		return nil, err
	}

	check := props.NewChecker(c.Nodes)
	cfg := &sim.Config{
		F:              c.F,
		T:              c.T,
		Seed:           c.Seed,
		NewAgent:       factory,
		Schedule:       sched,
		Adversary:      adv,
		MaxRounds:      c.MaxRounds,
		RunToMaxRounds: c.RunFullBudget,
		Observers:      append([]sim.Observer{check}, c.Observers...),
	}
	var res *sim.Result
	if c.Concurrent {
		res, err = sim.RunConcurrent(cfg)
	} else {
		res, err = sim.Run(cfg)
	}
	if err != nil {
		return nil, fmt.Errorf("wsync: %w", err)
	}

	out := &Result{
		AllSynced:     res.AllSynced,
		Rounds:        res.Stats.Rounds,
		MaxSyncLocal:  res.MaxSyncLocal,
		SyncRound:     res.SyncRound,
		Activated:     res.Activated,
		Leaders:       res.Leaders,
		PropertiesOK:  check.OK(),
		Transmissions: res.Stats.Transmissions,
		Deliveries:    res.Stats.Deliveries,
		Collisions:    res.Stats.Collisions,
		JammedLosses:  res.Stats.DisruptedLosses,
		HitMaxRounds:  res.HitMaxRounds,
	}
	for _, v := range check.Violations() {
		out.Violations = append(out.Violations, v.String())
	}
	return out, nil
}

// agentFactory resolves the protocol into an engine agent factory.
func (c Config) agentFactory() (func(sim.NodeID, uint64, *rng.Rand) sim.Agent, error) {
	if c.NewAgent != nil {
		custom := c.NewAgent
		return func(id sim.NodeID, activation uint64, r *rng.Rand) sim.Agent {
			return custom(int(id), activation, r)
		}, nil
	}
	switch c.Protocol {
	case Trapdoor:
		p := trapdoor.Params{N: c.N, F: c.F, T: c.T, FaultTolerant: c.FaultTolerant}
		if c.FaultTolerant {
			p.CommitThreshold = 2
		}
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("wsync: %w", err)
		}
		return func(id sim.NodeID, activation uint64, r *rng.Rand) sim.Agent {
			return trapdoor.MustNew(p, r)
		}, nil
	case GoodSamaritan:
		p := samaritan.Params{N: c.N, F: c.F, T: c.T}
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("wsync: %w", err)
		}
		return func(id sim.NodeID, activation uint64, r *rng.Rand) sim.Agent {
			return samaritan.MustNew(p, r)
		}, nil
	case BaselineWakeup:
		return func(id sim.NodeID, activation uint64, r *rng.Rand) sim.Agent {
			return baseline.NewWakeup(c.N, c.F, r)
		}, nil
	case BaselineRoundRobin:
		return func(id sim.NodeID, activation uint64, r *rng.Rand) sim.Agent {
			return baseline.NewRoundRobin(c.N, c.F, r)
		}, nil
	case BaselineSingleFreq:
		return func(id sim.NodeID, activation uint64, r *rng.Rand) sim.Agent {
			return baseline.NewSingleFreq(c.N, r)
		}, nil
	default:
		return nil, fmt.Errorf("wsync: unknown protocol %q", c.Protocol)
	}
}

// schedule resolves the activation schedule.
func (c Config) schedule() (sim.Schedule, error) {
	if c.CustomSchedule != nil {
		return c.CustomSchedule, nil
	}
	switch c.Activation {
	case "simultaneous":
		return sim.Simultaneous{Count: c.Nodes}, nil
	case "staggered":
		return sim.Staggered{Count: c.Nodes, Gap: c.ActivationGap}, nil
	case "random":
		return sim.RandomWindow(c.Nodes, c.ActivationWindow, c.Seed+0x5eed), nil
	default:
		return nil, fmt.Errorf("wsync: unknown activation %q", c.Activation)
	}
}

// adversary resolves the jammer.
func (c Config) adversary() (sim.Adversary, error) {
	if c.CustomAdversary != nil {
		return c.CustomAdversary, nil
	}
	if c.Adversary == "fixed" && c.JammedPrefix != c.T {
		if c.JammedPrefix > c.T {
			return nil, fmt.Errorf("wsync: JammedPrefix %d exceeds budget T=%d", c.JammedPrefix, c.T)
		}
		return adversary.NewLowPrefix(c.F, c.JammedPrefix), nil
	}
	adv, err := adversary.New(c.Adversary, c.F, c.T, c.Seed+0xadc)
	if err != nil {
		return nil, fmt.Errorf("wsync: %w", err)
	}
	return adv, nil
}

// NewTrapdoorNode constructs a Trapdoor Protocol agent directly; use it to
// embed the protocol inside a custom agent (see examples/jammed_hopping).
func NewTrapdoorNode(p TrapdoorParams, r *Rand) (Agent, error) {
	return trapdoor.New(p, r)
}

// NewGoodSamaritanNode constructs a Good Samaritan Protocol agent directly.
func NewGoodSamaritanNode(p SamaritanParams, r *Rand) (Agent, error) {
	return samaritan.New(p, r)
}
