module wsync

go 1.22
