package wsync

import (
	"strings"
	"testing"

	"wsync/internal/sim"
)

func TestRunDefaults(t *testing.T) {
	res, err := Run(Config{Nodes: 2, T: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllSynced || !res.PropertiesOK || res.Leaders != 1 {
		t.Fatalf("default run failed: %+v", res)
	}
}

func TestRunTrapdoorJammed(t *testing.T) {
	res, err := Run(Config{
		Protocol:  Trapdoor,
		Nodes:     4,
		N:         32,
		F:         8,
		T:         2,
		Adversary: "fixed",
		Seed:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllSynced {
		t.Fatalf("did not sync: %+v", res)
	}
	if !res.PropertiesOK {
		t.Fatalf("violations: %v", res.Violations)
	}
	if res.MaxSyncLocal == 0 || res.MaxSyncLocal > res.Rounds {
		t.Fatalf("MaxSyncLocal = %d, Rounds = %d", res.MaxSyncLocal, res.Rounds)
	}
}

func TestRunSamaritanGoodCase(t *testing.T) {
	res, err := Run(Config{
		Protocol:     GoodSamaritan,
		Nodes:        2,
		N:            16,
		F:            8,
		T:            4,
		Adversary:    "fixed",
		JammedPrefix: 1,
		Seed:         5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllSynced || !res.PropertiesOK {
		t.Fatalf("good case failed: %+v", res)
	}
}

func TestRunBaselines(t *testing.T) {
	for _, proto := range []Protocol{BaselineWakeup, BaselineRoundRobin} {
		res, err := Run(Config{Protocol: proto, Nodes: 4, N: 16, F: 8, Seed: 7, MaxRounds: 200000})
		if err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
		if !res.AllSynced {
			t.Fatalf("%s did not sync on a clean channel", proto)
		}
	}
}

func TestRunSingleFreqJammedFails(t *testing.T) {
	res, err := Run(Config{
		Protocol:  BaselineSingleFreq,
		Nodes:     2,
		F:         4,
		T:         1,
		Adversary: "fixed",
		MaxRounds: 3000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Deliveries != 0 {
		t.Fatal("deliveries on a jammed single frequency")
	}
	if res.Leaders != 2 {
		t.Fatalf("leaders = %d, want 2 stranded self-commits", res.Leaders)
	}
}

func TestRunConcurrentMatches(t *testing.T) {
	mk := func(concurrent bool) Config {
		return Config{
			Protocol: Trapdoor, Nodes: 6, N: 32, F: 8, T: 2,
			Adversary: "random", Seed: 11, Concurrent: concurrent,
		}
	}
	seq, err := Run(mk(false))
	if err != nil {
		t.Fatal(err)
	}
	conc, err := Run(mk(true))
	if err != nil {
		t.Fatal(err)
	}
	if seq.Rounds != conc.Rounds || seq.MaxSyncLocal != conc.MaxSyncLocal {
		t.Fatalf("concurrent differs: %d/%d vs %d/%d",
			seq.Rounds, seq.MaxSyncLocal, conc.Rounds, conc.MaxSyncLocal)
	}
}

func TestRunStaggeredAndRandomActivation(t *testing.T) {
	for _, act := range []string{"staggered", "random"} {
		res, err := Run(Config{
			Protocol: Trapdoor, Nodes: 3, N: 16, F: 6, T: 1,
			Adversary: "sweep", Activation: act, ActivationGap: 25,
			ActivationWindow: 100, Seed: 13,
		})
		if err != nil {
			t.Fatalf("%s: %v", act, err)
		}
		if !res.AllSynced || !res.PropertiesOK {
			t.Fatalf("%s: %+v", act, res)
		}
	}
}

func TestRunFaultTolerant(t *testing.T) {
	res, err := Run(Config{
		Protocol: Trapdoor, Nodes: 3, N: 8, F: 6, T: 1,
		Adversary: "fixed", FaultTolerant: true, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllSynced || !res.PropertiesOK {
		t.Fatalf("fault-tolerant run failed: %+v", res)
	}
}

func TestRunErrors(t *testing.T) {
	cases := []Config{
		{Protocol: "nope", Nodes: 2},
		{Nodes: 2, Adversary: "nope"},
		{Nodes: 2, Activation: "nope"},
		{Nodes: 2, F: 4, T: 1, Adversary: "fixed", JammedPrefix: 3},
		{Protocol: GoodSamaritan, Nodes: 2, F: 4, T: 3}, // T > F/2
	}
	for i, c := range cases {
		if _, err := Run(c); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, c)
		}
	}
}

// countingAgent verifies the custom-agent extension point.
type countingAgent struct {
	steps int
	out   Output
}

func (a *countingAgent) Step(local uint64) Action {
	a.steps++
	if local >= 5 {
		a.out = Output{Value: local, Synced: true}
	} else if a.out.Synced {
		a.out.Value++
	}
	if a.out.Synced {
		a.out.Value = local // keep correctness: value == local round here
	}
	return Action{Freq: 1}
}
func (a *countingAgent) Deliver(Message) {}
func (a *countingAgent) Output() Output  { return a.out }

func TestRunCustomAgent(t *testing.T) {
	agents := map[int]*countingAgent{}
	res, err := Run(Config{
		Nodes: 3,
		F:     4,
		NewAgent: func(id int, activation uint64, r *Rand) Agent {
			a := &countingAgent{}
			agents[id] = a
			return a
		},
		MaxRounds: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllSynced {
		t.Fatalf("custom agents did not sync: %+v", res)
	}
	if len(agents) != 3 {
		t.Fatalf("factory called %d times", len(agents))
	}
}

func TestRunCustomScheduleAndAdversary(t *testing.T) {
	res, err := Run(Config{
		Protocol:        Trapdoor,
		Nodes:           2,
		N:               8,
		F:               4,
		T:               1,
		CustomSchedule:  sim.Explicit{Rounds: []uint64{1, 40}},
		CustomAdversary: nil, // none
		Seed:            19,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Activated[1] != 40 {
		t.Fatalf("custom schedule ignored: %+v", res.Activated)
	}
}

func TestViolationStringsSurface(t *testing.T) {
	// The no-knockout ablation is not reachable via the public API, but a
	// broken custom agent is: one that reverts to ⊥. A second, forever
	// silent node keeps the run alive past the violation round.
	res, err := Run(Config{
		Nodes: 2,
		F:     2,
		NewAgent: func(id int, activation uint64, r *Rand) Agent {
			if id == 0 {
				return &revertingAgent{}
			}
			return &silentAgent{}
		},
		MaxRounds: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PropertiesOK {
		t.Fatal("reverting agent not flagged")
	}
	if len(res.Violations) == 0 || !strings.Contains(res.Violations[0], "synch-commit") {
		t.Fatalf("violations = %v", res.Violations)
	}
}

type revertingAgent struct{ step int }

func (a *revertingAgent) Step(local uint64) Action {
	a.step++
	return Action{Freq: 1}
}
func (a *revertingAgent) Deliver(Message) {}
func (a *revertingAgent) Output() Output {
	if a.step == 2 {
		return Output{Value: 7, Synced: true}
	}
	return Output{}
}

type silentAgent struct{}

func (a *silentAgent) Step(local uint64) Action { return Action{Freq: 2} }
func (a *silentAgent) Deliver(Message)          {}
func (a *silentAgent) Output() Output           { return Output{} }

func TestRunRendezvousDefaults(t *testing.T) {
	res, err := RunRendezvous(RendezvousConfig{T: 2, Jammer: "random", Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.FirstMeet == 0 || res.AllMet == 0 {
		t.Fatalf("two parties never met: %+v", res)
	}
	if res.FirstMeet != res.AllMet {
		t.Fatalf("two-party meet mismatch: %+v", res)
	}
}

func TestRunRendezvousKPartyMasked(t *testing.T) {
	// T=3 means the parties spread over width min(16, 6) = 6, so the
	// masks must hit 1..6 to actually jam any reception.
	res, err := RunRendezvous(RendezvousConfig{
		Parties: 4,
		F:       16,
		T:       3,
		Jammer:  "greedy",
		Masks:   [][]int{{1, 2}, nil, {3}},
		Stagger: 2,
		Seed:    11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AllMet == 0 {
		t.Fatalf("4 parties never all met: %+v", res)
	}
}

func TestRunRendezvousErrors(t *testing.T) {
	if _, err := RunRendezvous(RendezvousConfig{F: 4, Width: 8}); err == nil {
		t.Fatal("width > F accepted")
	}
	if _, err := RunRendezvous(RendezvousConfig{Jammer: "nope", T: 1}); err == nil {
		t.Fatal("unknown jammer accepted")
	}
	if _, err := RunRendezvous(RendezvousConfig{Parties: 2, Masks: [][]int{{1}, {1}, {1}}}); err == nil {
		t.Fatal("more masks than parties accepted")
	}
}
